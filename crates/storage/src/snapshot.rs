//! Checkpoint/recovery of an [`OdhTable`].
//!
//! A snapshot is the table's *metadata* — container page lists, B-tree
//! roots, the source registry, configuration, counters — serialized by the
//! server's checkpoint into its own pager. The page data itself is already
//! on the disk once the pool is flushed, so recovery is: reopen the disk,
//! deserialize the snapshot, re-attach the structures. Open ingest buffers
//! are *not* part of a snapshot (the paper's insert path is explicitly
//! non-transactional); [`OdhTable::snapshot`] therefore requires a flush
//! first and refuses to run with unsealed points.

use crate::container::{Container, ContainerSnapshot};
use crate::stats::{MeterIoHook, StatsSnapshot, StorageStats};
use crate::table::{OdhTable, TableConfig};
use odh_pager::pool::BufferPool;
use odh_sim::ResourceMeter;
use odh_types::{OdhError, Result, SourceClass};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Recovery image of one operational table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableSnapshot {
    pub config: TableConfigSnapshot,
    pub sources: Vec<(u64, SourceClass)>,
    pub rts: ContainerSnapshot,
    pub irts: ContainerSnapshot,
    pub mg: ContainerSnapshot,
    /// Cold-tier generation; `None` in pre-compaction snapshots (an empty
    /// cold container is created on restore).
    pub cold: Option<ContainerSnapshot>,
    pub reorganized: bool,
    pub stats: StatsSnapshot,
    /// Sealed low-water marks (highest container-sealed WAL LSN) per
    /// source and per MG group; replay skips frames at or below them.
    /// `None` in pre-WAL snapshots (the vendored serde stub has no field
    /// defaults, so optional fields are `Option`s).
    pub sealed: Option<Vec<(u64, u64)>>,
    pub mg_sealed: Option<Vec<(u32, u64)>>,
    /// The table id this table logs WAL frames under, when durable.
    pub wal_table_id: Option<u16>,
    /// Side-buffer sealed low-water marks per source (late-arrival path);
    /// `None` in pre-hostile-ingest snapshots.
    pub late_sealed: Option<Vec<(u64, u64)>>,
    /// Active (unresolved) tombstones at checkpoint time.
    pub tombstones: Option<Vec<crate::delete::Tombstone>>,
    /// Highest delete LSN ever applied — replay skips delete frames at or
    /// below it so a retired tombstone cannot resurrect.
    pub tombstone_sealed: Option<u64>,
}

/// Serializable form of [`TableConfig`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableConfigSnapshot {
    pub schema: odh_types::SchemaType,
    pub batch_size: usize,
    pub policy: odh_compress::column::Policy,
    pub mg_group_size: u64,
    /// `None` in pre-WAL snapshots (treated as `false`).
    pub strict_snapshot: Option<bool>,
    /// Decoded-batch cache budget; `None` in pre-read-path snapshots
    /// (treated as the default).
    pub decode_cache_bytes: Option<usize>,
    /// Seal pipeline worker count; `None` in pre-pipeline snapshots
    /// (treated as the default).
    pub seal_workers: Option<usize>,
    /// Seal queue depth; `None` in pre-pipeline snapshots.
    pub seal_queue_depth: Option<usize>,
    /// Compaction knobs; all `None` in pre-compaction snapshots
    /// (treated as the defaults: merge below batch_size, target 4×,
    /// no cold tier, no TTL, manual compaction only).
    pub compact_min_batch: Option<usize>,
    pub compact_target_batch: Option<usize>,
    pub cold_after_us: Option<i64>,
    pub retention_ttl_us: Option<i64>,
    pub compact_interval_ms: Option<u64>,
}

impl From<&TableConfig> for TableConfigSnapshot {
    fn from(c: &TableConfig) -> Self {
        TableConfigSnapshot {
            schema: c.schema.clone(),
            batch_size: c.batch_size,
            policy: c.policy,
            mg_group_size: c.mg_group_size,
            strict_snapshot: Some(c.strict_snapshot),
            decode_cache_bytes: Some(c.decode_cache_bytes),
            seal_workers: Some(c.seal_workers),
            seal_queue_depth: Some(c.seal_queue_depth),
            compact_min_batch: Some(c.compact_min_batch),
            compact_target_batch: Some(c.compact_target_batch),
            cold_after_us: Some(c.cold_after_us),
            retention_ttl_us: Some(c.retention_ttl_us),
            compact_interval_ms: Some(c.compact_interval_ms),
        }
    }
}

impl From<&TableConfigSnapshot> for TableConfig {
    fn from(s: &TableConfigSnapshot) -> Self {
        let mut cfg = TableConfig::new(s.schema.clone())
            .with_batch_size(s.batch_size)
            .with_policy(s.policy)
            .with_mg_group_size(s.mg_group_size)
            .with_strict_snapshot(s.strict_snapshot.unwrap_or(false))
            .with_decode_cache_bytes(
                s.decode_cache_bytes.unwrap_or(crate::table::DEFAULT_DECODE_CACHE_BYTES),
            )
            .with_seal_workers(s.seal_workers.unwrap_or_else(crate::table::default_seal_workers))
            .with_seal_queue_depth(
                s.seal_queue_depth.unwrap_or(crate::table::DEFAULT_SEAL_QUEUE_DEPTH),
            );
        // Raw microsecond/knob fields round-trip directly (the builders
        // exist for the Duration-typed public API).
        cfg.compact_min_batch = s.compact_min_batch.unwrap_or(0);
        cfg.compact_target_batch = s.compact_target_batch.unwrap_or(0);
        cfg.cold_after_us = s.cold_after_us.unwrap_or(0);
        cfg.retention_ttl_us = s.retention_ttl_us.unwrap_or(0);
        cfg.compact_interval_ms = s.compact_interval_ms.unwrap_or(0);
        cfg
    }
}

impl OdhTable {
    /// Capture the table's recovery image.
    ///
    /// Without a WAL (or with [`TableConfig::with_strict_snapshot`]) this
    /// fails if any ingest buffer still holds unsealed points — call
    /// [`OdhTable::flush`] first. With a WAL attached the checkpoint is
    /// *lenient*: open buffers are simply left out of the image (their
    /// rows sit above the checkpoint LSN in the log, so recovery replays
    /// them), and the persisted counters are reduced by the buffered rows
    /// that replay will re-count.
    pub fn snapshot(&self) -> Result<TableSnapshot> {
        // Settle the seal pipeline first: queued batches land in their
        // containers (and the image), instead of counting as buffered.
        self.drain_seals()?;
        let buffered = self.buffered_points();
        let lenient = self.wal_table_id().is_some() && !self.config().strict_snapshot;
        if buffered > 0 && !lenient {
            return Err(OdhError::Config(
                "snapshot with unsealed ingest buffers; flush first".into(),
            ));
        }
        let sources = self.registry.snapshot_sources();
        let mut stats = self.stats.snapshot();
        if buffered > 0 {
            let (records, points) = self.buffered_totals();
            stats.records_ingested = stats.records_ingested.saturating_sub(records);
            stats.points_ingested = stats.points_ingested.saturating_sub(points);
        }
        let sealed = self.registry.snapshot_sealed();
        let mg_sealed = self.registry.snapshot_mg_sealed();
        let late_sealed = self.registry.snapshot_late_sealed();
        // Exclude a concurrent compaction pass: a checkpoint must not
        // capture one generation pre-swap and another post-swap (points
        // would be doubled or lost in the image).
        let _no_compact = self.compact_lock.lock();
        Ok(TableSnapshot {
            config: TableConfigSnapshot::from(self.config()),
            sources,
            rts: self.rts.read().snapshot(),
            irts: self.irts.read().snapshot(),
            mg: self.mg.read().snapshot(),
            cold: Some(self.cold.read().snapshot()),
            reorganized: self.reorganized.load(std::sync::atomic::Ordering::Acquire),
            stats,
            sealed: Some(sealed),
            mg_sealed: Some(mg_sealed),
            wal_table_id: self.wal_table_id(),
            late_sealed: Some(late_sealed),
            tombstones: Some(self.tombstones().as_ref().clone()),
            tombstone_sealed: Some(self.tombstone_sealed.load(std::sync::atomic::Ordering::SeqCst)),
        })
    }

    /// Re-attach a table from its recovery image over a reopened pool.
    pub fn restore(
        pool: Arc<BufferPool>,
        meter: Arc<ResourceMeter>,
        snap: &TableSnapshot,
    ) -> Result<OdhTable> {
        pool.set_hook(Arc::new(MeterIoHook(meter.clone())));
        let cold = match &snap.cold {
            Some(c) => Container::restore(pool.clone(), c),
            // Pre-compaction snapshot: start with an empty cold tier (the
            // structure tag is nominal — cold batches self-describe).
            None => Container::create(pool.clone(), crate::select::Structure::Irts)?,
        };
        let table = OdhTable::from_parts(
            TableConfig::from(&snap.config),
            pool.clone(),
            meter,
            Container::restore(pool.clone(), &snap.rts),
            Container::restore(pool.clone(), &snap.irts),
            Container::restore(pool, &snap.mg),
            cold,
            snap.reorganized,
            StorageStats::from_snapshot(&snap.stats),
        );
        for (id, class) in &snap.sources {
            table.register_source(odh_types::SourceId(*id), *class)?;
        }
        // Restore the sealed low-water marks so WAL replay stays idempotent
        // after re-attaching the log. (register_source above never logs:
        // the WAL is only bound after restore.)
        table.registry.restore_sealed(snap.sealed.iter().flatten().copied());
        table.registry.restore_mg_sealed(snap.mg_sealed.iter().flatten().copied());
        table.registry.restore_late_sealed(snap.late_sealed.iter().flatten().copied());
        for t in snap.tombstones.iter().flatten() {
            table.restore_tombstone(t.clone());
        }
        table
            .tombstone_sealed
            .store(snap.tombstone_sealed.unwrap_or(0), std::sync::atomic::Ordering::SeqCst);
        if let Some(tid) = snap.wal_table_id {
            let _ = table.restored_wal_table_id.set(tid);
        }
        Ok(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odh_pager::disk::FileDisk;
    use odh_types::{Duration, Record, SchemaType, SourceId, Timestamp};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("odh-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn snapshot_restore_round_trip_over_a_real_file() {
        let path = tmp("table.pages");
        let snap_json;
        {
            let disk = Arc::new(FileDisk::create(&path).unwrap());
            let pool = BufferPool::new(disk, 256);
            let t = OdhTable::create(
                pool,
                ResourceMeter::unmetered(),
                TableConfig::new(SchemaType::new("m", ["a", "b"])).with_batch_size(16),
            )
            .unwrap();
            for id in 0..6u64 {
                t.register_source(
                    SourceId(id),
                    SourceClass::regular_low(Duration::from_minutes(15)),
                )
                .unwrap();
            }
            for i in 0..40i64 {
                for id in 0..6u64 {
                    t.put(&Record::dense(
                        SourceId(id),
                        Timestamp(i * 900_000_000),
                        [i as f64, id as f64],
                    ))
                    .unwrap();
                }
            }
            t.flush().unwrap();
            snap_json = serde_json::to_string(&t.snapshot().unwrap()).unwrap();
        }
        // Reopen the file fresh, restore, and query.
        let disk = Arc::new(FileDisk::open(&path).unwrap());
        let pool = BufferPool::new(disk, 256);
        let snap: TableSnapshot = serde_json::from_str(&snap_json).unwrap();
        let t = OdhTable::restore(pool, ResourceMeter::unmetered(), &snap).unwrap();
        assert_eq!(t.source_count(), 6);
        assert_eq!(t.stats().snapshot().points_ingested, 480);
        let pts =
            t.historical_scan(SourceId(3), Timestamp(0), Timestamp(i64::MAX), &[0, 1]).unwrap();
        assert_eq!(pts.len(), 40);
        assert_eq!(pts[7].values, vec![Some(7.0), Some(3.0)]);
        // And it accepts new writes.
        t.put(&Record::dense(SourceId(3), Timestamp(99 * 900_000_000), [9.0, 9.0])).unwrap();
        t.flush().unwrap();
        let pts = t.historical_scan(SourceId(3), Timestamp(0), Timestamp(i64::MAX), &[0]).unwrap();
        assert_eq!(pts.len(), 41);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn snapshot_refuses_unsealed_buffers() {
        let pool = BufferPool::new(Arc::new(odh_pager::disk::MemDisk::new()), 64);
        let t = OdhTable::create(
            pool,
            ResourceMeter::unmetered(),
            TableConfig::new(SchemaType::new("m", ["a"])).with_batch_size(1000),
        )
        .unwrap();
        t.register_source(SourceId(1), SourceClass::irregular_high()).unwrap();
        t.put(&Record::dense(SourceId(1), Timestamp(1), [1.0])).unwrap();
        assert_eq!(t.snapshot().err().unwrap().kind(), "config");
        t.flush().unwrap();
        assert!(t.snapshot().is_ok());
    }

    #[test]
    fn tombstones_and_late_marks_survive_snapshot_restore() {
        let path = tmp("hostile.pages");
        let snap_json;
        {
            let disk = Arc::new(FileDisk::create(&path).unwrap());
            let pool = BufferPool::new(disk, 256);
            let t = OdhTable::create(
                pool.clone(),
                ResourceMeter::unmetered(),
                TableConfig::new(SchemaType::new("m", ["a", "b"])).with_batch_size(16),
            )
            .unwrap();
            t.register_source(SourceId(1), SourceClass::irregular_high()).unwrap();
            for i in 0..40i64 {
                t.put(&Record::dense(SourceId(1), Timestamp(i * 1_000_000), [i as f64, 0.0]))
                    .unwrap();
            }
            t.flush().unwrap();
            t.delete(&crate::delete::DeletePredicate::all_sources(5_000_000, 9_000_000)).unwrap();
            snap_json = serde_json::to_string(&t.snapshot().unwrap()).unwrap();
            pool.flush_all().unwrap();
        }
        let disk = Arc::new(FileDisk::open(&path).unwrap());
        let pool = BufferPool::new(disk, 256);
        let snap: TableSnapshot = serde_json::from_str(&snap_json).unwrap();
        let t = OdhTable::restore(pool, ResourceMeter::unmetered(), &snap).unwrap();
        assert_eq!(t.tombstones().len(), 1, "tombstone restored");
        let pts =
            t.historical_scan(SourceId(1), Timestamp(i64::MIN), Timestamp(i64::MAX), &[0]).unwrap();
        assert_eq!(pts.len(), 35, "restored tombstone still masks");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn config_snapshot_round_trips() {
        let cfg = TableConfig::new(SchemaType::new("x", ["t1", "t2"]))
            .with_batch_size(77)
            .with_policy(odh_compress::column::Policy::Lossy { max_dev: 0.25 })
            .with_mg_group_size(123);
        let snap = TableConfigSnapshot::from(&cfg);
        let back = TableConfig::from(&snap);
        assert_eq!(back.schema, cfg.schema);
        assert_eq!(back.batch_size, 77);
        assert_eq!(back.mg_group_size, 123);
    }
}
