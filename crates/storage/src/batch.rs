//! Batch records — the on-heap serialization of the three structures.
//!
//! Every batch record carries its `end` timestamp in the header so scans
//! can decide overlap with a time range without touching the ValueBlob
//! (I/O-free pruning); only matching records pay blob decode cost.

use crate::blob::ValueBlob;
use odh_btree::KeyBuf;
use odh_compress::{delta, varint};
use odh_types::{GroupId, OdhError, Result, SourceId};

const T_RTS: u8 = 1;
const T_IRTS: u8 = 2;
const T_MG: u8 = 3;

/// A Regular Time Series batch: `b` points of one source at a fixed
/// interval. Timestamps are implicit: `begin + i × interval`.
#[derive(Debug, Clone, PartialEq)]
pub struct RtsBatch {
    pub source: SourceId,
    pub begin: i64,
    pub interval: i64,
    pub count: u32,
    pub blob: ValueBlob,
}

/// An Irregular Time Series batch: `b` points of one source with an
/// explicit delta-of-delta timestamp block.
#[derive(Debug, Clone, PartialEq)]
pub struct IrtsBatch {
    pub source: SourceId,
    pub begin: i64,
    pub end: i64,
    pub timestamps: Vec<i64>,
    pub blob: ValueBlob,
}

/// A Mixed Grouping batch: `b` points, in timestamp order, from a *group*
/// of low-frequency sources; `ids[i]` is the source of point `i`.
#[derive(Debug, Clone, PartialEq)]
pub struct MgBatch {
    pub group: GroupId,
    pub begin: i64,
    pub end: i64,
    pub ids: Vec<SourceId>,
    pub timestamps: Vec<i64>,
    pub blob: ValueBlob,
}

impl RtsBatch {
    pub fn end(&self) -> i64 {
        self.begin + (self.count.max(1) as i64 - 1) * self.interval
    }

    pub fn timestamps(&self) -> Vec<i64> {
        (0..self.count as i64).map(|i| self.begin + i * self.interval).collect()
    }

    /// B-tree key: `(id, begin_time)` — the first two fields (Fig. 1).
    pub fn key(&self) -> Vec<u8> {
        KeyBuf::new().push_u64(self.source.0).push_i64(self.begin).build()
    }

    pub fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.blob.len() + 32);
        out.push(T_RTS);
        varint::write_u64(&mut out, self.source.0);
        varint::write_i64(&mut out, self.begin);
        varint::write_i64(&mut out, self.interval);
        varint::write_u64(&mut out, self.count as u64);
        out.extend_from_slice(&self.blob.bytes);
        out
    }
}

impl IrtsBatch {
    pub fn key(&self) -> Vec<u8> {
        KeyBuf::new().push_u64(self.source.0).push_i64(self.begin).build()
    }

    pub fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.blob.len() + self.timestamps.len() + 32);
        out.push(T_IRTS);
        varint::write_u64(&mut out, self.source.0);
        let ts_block = delta::encode_timestamps(&self.timestamps);
        out.extend_from_slice(&ts_block);
        out.extend_from_slice(&self.blob.bytes);
        out
    }
}

impl MgBatch {
    pub fn key(&self) -> Vec<u8> {
        KeyBuf::new().push_u32(self.group.0).push_i64(self.begin).build()
    }

    pub fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.blob.len() + self.timestamps.len() * 2 + 32);
        out.push(T_MG);
        varint::write_u64(&mut out, self.group.0 as u64);
        varint::write_u64(&mut out, self.ids.len() as u64);
        // Source ids of consecutive points are delta-coded: grouped
        // low-frequency sources report in near-id-order sweeps, so deltas
        // are small — this is the "data grouping compresses ids" effect.
        let mut prev = 0i64;
        for id in &self.ids {
            varint::write_i64(&mut out, id.0 as i64 - prev);
            prev = id.0 as i64;
        }
        let ts_block = delta::encode_timestamps(&self.timestamps);
        out.extend_from_slice(&ts_block);
        out.extend_from_slice(&self.blob.bytes);
        out
    }
}

/// Any batch record, as read back from a heap file.
#[derive(Debug, Clone, PartialEq)]
pub enum Batch {
    Rts(RtsBatch),
    Irts(IrtsBatch),
    Mg(MgBatch),
}

impl Batch {
    /// Deserialize a heap payload.
    pub fn deserialize(buf: &[u8]) -> Result<Batch> {
        let tag = *buf.first().ok_or_else(|| OdhError::Corrupt("empty batch record".into()))?;
        let mut pos = 1usize;
        match tag {
            T_RTS => {
                let source = SourceId(varint::read_u64(buf, &mut pos)?);
                let begin = varint::read_i64(buf, &mut pos)?;
                let interval = varint::read_i64(buf, &mut pos)?;
                let count = varint::read_u64(buf, &mut pos)? as u32;
                let blob = ValueBlob { bytes: buf[pos..].to_vec() };
                Ok(Batch::Rts(RtsBatch { source, begin, interval, count, blob }))
            }
            T_IRTS => {
                let source = SourceId(varint::read_u64(buf, &mut pos)?);
                let timestamps = delta::decode_timestamps_at(buf, &mut pos)?;
                let (begin, end) = bounds(&timestamps)?;
                let blob = ValueBlob { bytes: buf[pos..].to_vec() };
                Ok(Batch::Irts(IrtsBatch { source, begin, end, timestamps, blob }))
            }
            T_MG => {
                let group = GroupId(varint::read_u64(buf, &mut pos)? as u32);
                let n = varint::read_u64(buf, &mut pos)? as usize;
                let mut ids = Vec::with_capacity(n);
                let mut prev = 0i64;
                for _ in 0..n {
                    prev += varint::read_i64(buf, &mut pos)?;
                    ids.push(SourceId(prev as u64));
                }
                let timestamps = delta::decode_timestamps_at(buf, &mut pos)?;
                if timestamps.len() != n {
                    return Err(OdhError::Corrupt(format!(
                        "MG record: {n} ids but {} timestamps",
                        timestamps.len()
                    )));
                }
                let (begin, end) = bounds(&timestamps)?;
                let blob = ValueBlob { bytes: buf[pos..].to_vec() };
                Ok(Batch::Mg(MgBatch { group, begin, end, ids, timestamps, blob }))
            }
            other => Err(OdhError::Corrupt(format!("unknown batch tag {other}"))),
        }
    }

    /// Time coverage `[begin, end]` of this batch.
    pub fn time_range(&self) -> (i64, i64) {
        match self {
            Batch::Rts(b) => (b.begin, b.end()),
            Batch::Irts(b) => (b.begin, b.end),
            Batch::Mg(b) => (b.begin, b.end),
        }
    }

    pub fn n_points(&self) -> usize {
        match self {
            Batch::Rts(b) => b.count as usize,
            Batch::Irts(b) => b.timestamps.len(),
            Batch::Mg(b) => b.timestamps.len(),
        }
    }

    pub fn blob(&self) -> &ValueBlob {
        match self {
            Batch::Rts(b) => &b.blob,
            Batch::Irts(b) => &b.blob,
            Batch::Mg(b) => &b.blob,
        }
    }
}

fn bounds(ts: &[i64]) -> Result<(i64, i64)> {
    if ts.is_empty() {
        return Err(OdhError::Corrupt("batch with zero timestamps".into()));
    }
    Ok((ts[0], *ts.last().unwrap()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use odh_compress::column::Policy;

    fn blob_for(ts: &[i64], tags: usize) -> ValueBlob {
        let cols: Vec<Vec<Option<f64>>> = (0..tags)
            .map(|c| ts.iter().map(|&t| Some(t as f64 * 0.001 + c as f64)).collect())
            .collect();
        ValueBlob::encode(ts, &cols, Policy::Lossless)
    }

    #[test]
    fn rts_round_trip() {
        let ts: Vec<i64> = (0..50).map(|i| 1_000_000 + i * 20_000).collect();
        let b = RtsBatch {
            source: SourceId(42),
            begin: ts[0],
            interval: 20_000,
            count: 50,
            blob: blob_for(&ts, 3),
        };
        assert_eq!(b.timestamps(), ts);
        assert_eq!(b.end(), *ts.last().unwrap());
        let back = Batch::deserialize(&b.serialize()).unwrap();
        assert_eq!(back, Batch::Rts(b.clone()));
        assert_eq!(back.time_range(), (b.begin, b.end()));
        assert_eq!(back.n_points(), 50);
    }

    #[test]
    fn irts_round_trip() {
        let ts = vec![10i64, 17, 40, 41, 1000];
        let b = IrtsBatch {
            source: SourceId(7),
            begin: 10,
            end: 1000,
            timestamps: ts.clone(),
            blob: blob_for(&ts, 2),
        };
        let back = Batch::deserialize(&b.serialize()).unwrap();
        assert_eq!(back, Batch::Irts(b));
    }

    #[test]
    fn mg_round_trip() {
        let ts = vec![100i64, 100, 105, 110];
        let b = MgBatch {
            group: GroupId(3),
            begin: 100,
            end: 110,
            ids: vec![SourceId(900), SourceId(901), SourceId(7), SourceId(902)],
            timestamps: ts.clone(),
            blob: blob_for(&ts, 4),
        };
        let back = Batch::deserialize(&b.serialize()).unwrap();
        assert_eq!(back, Batch::Mg(b));
    }

    #[test]
    fn keys_order_by_id_then_time() {
        let mk = |src, begin| RtsBatch {
            source: SourceId(src),
            begin,
            interval: 1,
            count: 1,
            blob: blob_for(&[begin], 1),
        };
        assert!(mk(1, 500).key() < mk(2, 0).key());
        assert!(mk(2, 0).key() < mk(2, 1).key());
    }

    #[test]
    fn garbage_rejected() {
        assert!(Batch::deserialize(&[]).is_err());
        assert!(Batch::deserialize(&[99, 0, 0]).is_err());
    }

    #[test]
    fn single_point_rts_end_is_begin() {
        let b = RtsBatch {
            source: SourceId(1),
            begin: 77,
            interval: 1000,
            count: 1,
            blob: blob_for(&[77], 1),
        };
        assert_eq!(b.end(), 77);
    }
}
