//! Batch records — the on-heap serialization of the three structures.
//!
//! Every batch record carries its `end` timestamp in the header so scans
//! can decide overlap with a time range without touching the ValueBlob
//! (I/O-free pruning); only matching records pay blob decode cost.
//!
//! Since the v2 record tags, a sealed batch also carries one
//! [`TagSummary`] per tag — `(count, null_count, sum, min, max)` computed
//! from the raw columns at seal time, *before* any lossy encoding. A scan
//! that only needs `COUNT/SUM/AVG/MIN/MAX` over a time range that fully
//! covers the batch can be answered from the summary block alone, never
//! touching the ValueBlob. v1 tags (no summaries) still deserialize, so
//! snapshots written before the format change keep restoring.

use crate::blob::ValueBlob;
use odh_btree::KeyBuf;
use odh_compress::{delta, varint};
use odh_types::{GroupId, OdhError, Result, SourceId};

const T_RTS: u8 = 1;
const T_IRTS: u8 = 2;
const T_MG: u8 = 3;
// v2: same layout with a per-tag summary block between the header and
// the ValueBlob bytes.
const T_RTS2: u8 = 4;
const T_IRTS2: u8 = 5;
const T_MG2: u8 = 6;

/// Per-tag aggregate summary of one sealed batch, computed from the raw
/// (pre-compression) column at seal time — exact even under lossy blob
/// policies.
#[derive(Debug, Clone, PartialEq)]
pub struct TagSummary {
    /// Non-null values in the column.
    pub count: u64,
    /// NULL slots in the column (`count + null_count == n_points`).
    pub null_count: u64,
    /// Sum over the non-null values (0.0 when `count == 0`).
    pub sum: f64,
    /// Minimum non-null value; `+INFINITY` when `count == 0`.
    pub min: f64,
    /// Maximum non-null value; `-INFINITY` when `count == 0`.
    pub max: f64,
}

impl TagSummary {
    /// The identity element for [`TagSummary::merge`].
    pub fn empty() -> TagSummary {
        TagSummary { count: 0, null_count: 0, sum: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Fold another summary into this one (summaries form a monoid).
    pub fn merge(&mut self, other: &TagSummary) {
        self.count += other.count;
        self.null_count += other.null_count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Fold one raw value into this summary.
    pub fn add(&mut self, v: Option<f64>) {
        match v {
            Some(x) => {
                self.count += 1;
                self.sum += x;
                self.min = self.min.min(x);
                self.max = self.max.max(x);
            }
            None => self.null_count += 1,
        }
    }

    /// Summarize one raw column.
    pub fn from_column(col: &[Option<f64>]) -> TagSummary {
        let mut s = TagSummary::empty();
        for v in col {
            s.add(*v);
        }
        s
    }
}

/// Summarize every tag column of a batch about to be sealed.
pub fn summarize_columns(cols: &[Vec<Option<f64>>]) -> Vec<TagSummary> {
    cols.iter().map(|c| TagSummary::from_column(c)).collect()
}

fn write_summaries(out: &mut Vec<u8>, summaries: &[TagSummary]) {
    varint::write_u64(out, summaries.len() as u64);
    for s in summaries {
        varint::write_u64(out, s.count);
        varint::write_u64(out, s.null_count);
        out.extend_from_slice(&s.sum.to_le_bytes());
        out.extend_from_slice(&s.min.to_le_bytes());
        out.extend_from_slice(&s.max.to_le_bytes());
    }
}

fn read_summaries(buf: &[u8], pos: &mut usize) -> Result<Vec<TagSummary>> {
    let n = varint::read_u64(buf, pos)? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let count = varint::read_u64(buf, pos)?;
        let null_count = varint::read_u64(buf, pos)?;
        let mut f = [0u8; 8];
        let mut take = |pos: &mut usize| -> Result<f64> {
            let end = *pos + 8;
            if end > buf.len() {
                return Err(OdhError::Corrupt("truncated batch summary block".into()));
            }
            f.copy_from_slice(&buf[*pos..end]);
            *pos = end;
            Ok(f64::from_le_bytes(f))
        };
        let sum = take(pos)?;
        let min = take(pos)?;
        let max = take(pos)?;
        out.push(TagSummary { count, null_count, sum, min, max });
    }
    Ok(out)
}

/// A Regular Time Series batch: `b` points of one source at a fixed
/// interval. Timestamps are implicit: `begin + i × interval`.
#[derive(Debug, Clone, PartialEq)]
pub struct RtsBatch {
    pub source: SourceId,
    pub begin: i64,
    pub interval: i64,
    pub count: u32,
    pub blob: ValueBlob,
    /// Per-tag seal-time summaries; `None` on records read back from a
    /// pre-v2 snapshot.
    pub summaries: Option<Vec<TagSummary>>,
}

/// An Irregular Time Series batch: `b` points of one source with an
/// explicit delta-of-delta timestamp block.
#[derive(Debug, Clone, PartialEq)]
pub struct IrtsBatch {
    pub source: SourceId,
    pub begin: i64,
    pub end: i64,
    pub timestamps: Vec<i64>,
    pub blob: ValueBlob,
    /// Per-tag seal-time summaries; `None` on pre-v2 records.
    pub summaries: Option<Vec<TagSummary>>,
}

/// A Mixed Grouping batch: `b` points, in timestamp order, from a *group*
/// of low-frequency sources; `ids[i]` is the source of point `i`.
#[derive(Debug, Clone, PartialEq)]
pub struct MgBatch {
    pub group: GroupId,
    pub begin: i64,
    pub end: i64,
    pub ids: Vec<SourceId>,
    pub timestamps: Vec<i64>,
    pub blob: ValueBlob,
    /// Per-tag seal-time summaries over the *whole group batch* (all
    /// member sources pooled); `None` on pre-v2 records.
    pub summaries: Option<Vec<TagSummary>>,
}

impl RtsBatch {
    pub fn end(&self) -> i64 {
        self.begin + (self.count.max(1) as i64 - 1) * self.interval
    }

    pub fn timestamps(&self) -> Vec<i64> {
        (0..self.count as i64).map(|i| self.begin + i * self.interval).collect()
    }

    /// B-tree key: `(id, begin_time)` — the first two fields (Fig. 1).
    pub fn key(&self) -> Vec<u8> {
        KeyBuf::new().push_u64(self.source.0).push_i64(self.begin).build()
    }

    pub fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.blob.len() + 32);
        out.push(if self.summaries.is_some() { T_RTS2 } else { T_RTS });
        varint::write_u64(&mut out, self.source.0);
        varint::write_i64(&mut out, self.begin);
        varint::write_i64(&mut out, self.interval);
        varint::write_u64(&mut out, self.count as u64);
        if let Some(s) = &self.summaries {
            write_summaries(&mut out, s);
        }
        out.extend_from_slice(&self.blob.bytes);
        out
    }
}

impl IrtsBatch {
    pub fn key(&self) -> Vec<u8> {
        KeyBuf::new().push_u64(self.source.0).push_i64(self.begin).build()
    }

    pub fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.blob.len() + self.timestamps.len() + 32);
        out.push(if self.summaries.is_some() { T_IRTS2 } else { T_IRTS });
        varint::write_u64(&mut out, self.source.0);
        let ts_block = delta::encode_timestamps(&self.timestamps);
        out.extend_from_slice(&ts_block);
        if let Some(s) = &self.summaries {
            write_summaries(&mut out, s);
        }
        out.extend_from_slice(&self.blob.bytes);
        out
    }
}

impl MgBatch {
    pub fn key(&self) -> Vec<u8> {
        KeyBuf::new().push_u32(self.group.0).push_i64(self.begin).build()
    }

    pub fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.blob.len() + self.timestamps.len() * 2 + 32);
        out.push(if self.summaries.is_some() { T_MG2 } else { T_MG });
        varint::write_u64(&mut out, self.group.0 as u64);
        varint::write_u64(&mut out, self.ids.len() as u64);
        // Source ids of consecutive points are delta-coded: grouped
        // low-frequency sources report in near-id-order sweeps, so deltas
        // are small — this is the "data grouping compresses ids" effect.
        let mut prev = 0i64;
        for id in &self.ids {
            varint::write_i64(&mut out, id.0 as i64 - prev);
            prev = id.0 as i64;
        }
        let ts_block = delta::encode_timestamps(&self.timestamps);
        out.extend_from_slice(&ts_block);
        if let Some(s) = &self.summaries {
            write_summaries(&mut out, s);
        }
        out.extend_from_slice(&self.blob.bytes);
        out
    }
}

/// Any batch record, as read back from a heap file.
#[derive(Debug, Clone, PartialEq)]
pub enum Batch {
    Rts(RtsBatch),
    Irts(IrtsBatch),
    Mg(MgBatch),
}

impl Batch {
    /// Deserialize a heap payload.
    pub fn deserialize(buf: &[u8]) -> Result<Batch> {
        let tag = *buf.first().ok_or_else(|| OdhError::Corrupt("empty batch record".into()))?;
        let mut pos = 1usize;
        match tag {
            T_RTS | T_RTS2 => {
                let source = SourceId(varint::read_u64(buf, &mut pos)?);
                let begin = varint::read_i64(buf, &mut pos)?;
                let interval = varint::read_i64(buf, &mut pos)?;
                let count = varint::read_u64(buf, &mut pos)? as u32;
                let summaries =
                    if tag == T_RTS2 { Some(read_summaries(buf, &mut pos)?) } else { None };
                let blob = ValueBlob { bytes: buf[pos..].to_vec() };
                Ok(Batch::Rts(RtsBatch { source, begin, interval, count, blob, summaries }))
            }
            T_IRTS | T_IRTS2 => {
                let source = SourceId(varint::read_u64(buf, &mut pos)?);
                let timestamps = delta::decode_timestamps_at(buf, &mut pos)?;
                let (begin, end) = bounds(&timestamps)?;
                let summaries =
                    if tag == T_IRTS2 { Some(read_summaries(buf, &mut pos)?) } else { None };
                let blob = ValueBlob { bytes: buf[pos..].to_vec() };
                Ok(Batch::Irts(IrtsBatch { source, begin, end, timestamps, blob, summaries }))
            }
            T_MG | T_MG2 => {
                let group = GroupId(varint::read_u64(buf, &mut pos)? as u32);
                let n = varint::read_u64(buf, &mut pos)? as usize;
                let mut ids = Vec::with_capacity(n);
                let mut prev = 0i64;
                for _ in 0..n {
                    prev += varint::read_i64(buf, &mut pos)?;
                    ids.push(SourceId(prev as u64));
                }
                let timestamps = delta::decode_timestamps_at(buf, &mut pos)?;
                if timestamps.len() != n {
                    return Err(OdhError::Corrupt(format!(
                        "MG record: {n} ids but {} timestamps",
                        timestamps.len()
                    )));
                }
                let (begin, end) = bounds(&timestamps)?;
                let summaries =
                    if tag == T_MG2 { Some(read_summaries(buf, &mut pos)?) } else { None };
                let blob = ValueBlob { bytes: buf[pos..].to_vec() };
                Ok(Batch::Mg(MgBatch { group, begin, end, ids, timestamps, blob, summaries }))
            }
            other => Err(OdhError::Corrupt(format!("unknown batch tag {other}"))),
        }
    }

    /// Time coverage `[begin, end]` of this batch.
    pub fn time_range(&self) -> (i64, i64) {
        match self {
            Batch::Rts(b) => (b.begin, b.end()),
            Batch::Irts(b) => (b.begin, b.end),
            Batch::Mg(b) => (b.begin, b.end),
        }
    }

    pub fn n_points(&self) -> usize {
        match self {
            Batch::Rts(b) => b.count as usize,
            Batch::Irts(b) => b.timestamps.len(),
            Batch::Mg(b) => b.timestamps.len(),
        }
    }

    pub fn blob(&self) -> &ValueBlob {
        match self {
            Batch::Rts(b) => &b.blob,
            Batch::Irts(b) => &b.blob,
            Batch::Mg(b) => &b.blob,
        }
    }

    /// Seal-time per-tag summaries, when the record carries them.
    pub fn summaries(&self) -> Option<&[TagSummary]> {
        match self {
            Batch::Rts(b) => b.summaries.as_deref(),
            Batch::Irts(b) => b.summaries.as_deref(),
            Batch::Mg(b) => b.summaries.as_deref(),
        }
    }

    /// The single source of a per-source batch; `None` for MG batches
    /// (their rows carry per-row ids).
    pub fn source(&self) -> Option<SourceId> {
        match self {
            Batch::Rts(b) => Some(b.source),
            Batch::Irts(b) => Some(b.source),
            Batch::Mg(_) => None,
        }
    }

    /// B-tree key of this batch in its container.
    pub fn key(&self) -> Vec<u8> {
        match self {
            Batch::Rts(b) => b.key(),
            Batch::Irts(b) => b.key(),
            Batch::Mg(b) => b.key(),
        }
    }

    /// Re-serialize to the heap payload form (the compactor copies
    /// already-large batches between generations without re-encoding).
    pub fn serialize(&self) -> Vec<u8> {
        match self {
            Batch::Rts(b) => b.serialize(),
            Batch::Irts(b) => b.serialize(),
            Batch::Mg(b) => b.serialize(),
        }
    }

    /// Explicit timestamps of every point (materialized for RTS).
    pub fn timestamps(&self) -> Vec<i64> {
        match self {
            Batch::Rts(b) => b.timestamps(),
            Batch::Irts(b) => b.timestamps.clone(),
            Batch::Mg(b) => b.timestamps.clone(),
        }
    }
}

fn bounds(ts: &[i64]) -> Result<(i64, i64)> {
    if ts.is_empty() {
        return Err(OdhError::Corrupt("batch with zero timestamps".into()));
    }
    Ok((ts[0], *ts.last().unwrap()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use odh_compress::column::Policy;

    fn blob_for(ts: &[i64], tags: usize) -> ValueBlob {
        let cols: Vec<Vec<Option<f64>>> = (0..tags)
            .map(|c| ts.iter().map(|&t| Some(t as f64 * 0.001 + c as f64)).collect())
            .collect();
        ValueBlob::encode(ts, &cols, Policy::Lossless)
    }

    #[test]
    fn rts_round_trip() {
        let ts: Vec<i64> = (0..50).map(|i| 1_000_000 + i * 20_000).collect();
        let b = RtsBatch {
            source: SourceId(42),
            begin: ts[0],
            interval: 20_000,
            count: 50,
            blob: blob_for(&ts, 3),
            summaries: None,
        };
        assert_eq!(b.timestamps(), ts);
        assert_eq!(b.end(), *ts.last().unwrap());
        let back = Batch::deserialize(&b.serialize()).unwrap();
        assert_eq!(back, Batch::Rts(b.clone()));
        assert_eq!(back.time_range(), (b.begin, b.end()));
        assert_eq!(back.n_points(), 50);
    }

    #[test]
    fn irts_round_trip() {
        let ts = vec![10i64, 17, 40, 41, 1000];
        let b = IrtsBatch {
            source: SourceId(7),
            begin: 10,
            end: 1000,
            timestamps: ts.clone(),
            blob: blob_for(&ts, 2),
            summaries: None,
        };
        let back = Batch::deserialize(&b.serialize()).unwrap();
        assert_eq!(back, Batch::Irts(b));
    }

    #[test]
    fn mg_round_trip() {
        let ts = vec![100i64, 100, 105, 110];
        let b = MgBatch {
            group: GroupId(3),
            begin: 100,
            end: 110,
            ids: vec![SourceId(900), SourceId(901), SourceId(7), SourceId(902)],
            timestamps: ts.clone(),
            blob: blob_for(&ts, 4),
            summaries: None,
        };
        let back = Batch::deserialize(&b.serialize()).unwrap();
        assert_eq!(back, Batch::Mg(b));
    }

    #[test]
    fn keys_order_by_id_then_time() {
        let mk = |src, begin| RtsBatch {
            source: SourceId(src),
            begin,
            interval: 1,
            count: 1,
            blob: blob_for(&[begin], 1),
            summaries: None,
        };
        assert!(mk(1, 500).key() < mk(2, 0).key());
        assert!(mk(2, 0).key() < mk(2, 1).key());
    }

    #[test]
    fn garbage_rejected() {
        assert!(Batch::deserialize(&[]).is_err());
        assert!(Batch::deserialize(&[99, 0, 0]).is_err());
    }

    #[test]
    fn single_point_rts_end_is_begin() {
        let b = RtsBatch {
            source: SourceId(1),
            begin: 77,
            interval: 1000,
            count: 1,
            blob: blob_for(&[77], 1),
            summaries: None,
        };
        assert_eq!(b.end(), 77);
    }

    #[test]
    fn v2_summary_round_trip() {
        let ts = vec![10i64, 17, 40, 41, 1000];
        let cols = vec![
            vec![Some(1.0), None, Some(3.5), Some(-2.0), None],
            vec![None, None, None, None, None],
        ];
        let b = IrtsBatch {
            source: SourceId(7),
            begin: 10,
            end: 1000,
            timestamps: ts.clone(),
            blob: ValueBlob::encode(&ts, &cols, Policy::Lossless),
            summaries: Some(summarize_columns(&cols)),
        };
        let back = Batch::deserialize(&b.serialize()).unwrap();
        assert_eq!(back, Batch::Irts(b.clone()));
        let s = back.summaries().unwrap();
        assert_eq!(s[0], TagSummary { count: 3, null_count: 2, sum: 2.5, min: -2.0, max: 3.5 });
        // All-null tag: neutral sentinels, so the summary stays comparable.
        assert_eq!(
            s[1],
            TagSummary {
                count: 0,
                null_count: 5,
                sum: 0.0,
                min: f64::INFINITY,
                max: f64::NEG_INFINITY
            }
        );
    }

    #[test]
    fn v1_records_still_deserialize_without_summaries() {
        // A record serialized with `summaries: None` uses the v1 tag and
        // must read back exactly as before the format change.
        let ts: Vec<i64> = (0..8).map(|i| i * 500).collect();
        let b = RtsBatch {
            source: SourceId(3),
            begin: 0,
            interval: 500,
            count: 8,
            blob: blob_for(&ts, 2),
            summaries: None,
        };
        let bytes = b.serialize();
        assert_eq!(bytes[0], 1, "summary-less batches keep the v1 tag");
        let back = Batch::deserialize(&bytes).unwrap();
        assert_eq!(back.summaries(), None);
        assert_eq!(back, Batch::Rts(b));
    }
}
