//! Calibrated cost constants.
//!
//! Every engine operation charges a number of abstract cost units. The
//! absolute scale is arbitrary; what matters is the *ratios* between
//! operations, which follow conventional storage-engine lore (a page write
//! costs ~two page reads; an index insert costs a descent plus a leaf
//! update; assembling a relational cell is a few dozen instructions). The
//! default `units_per_core_second` is calibrated once so that Table 2's
//! setting 1 (2000 PMUs @ 25 Hz on 32 cores) lands near the paper's 0.6%
//! average CPU load, and every other experiment reuses the same constants —
//! no per-experiment fudging.

/// Cost-unit prices for engine operations. One unit ≈ one microsecond of a
/// single calibrated core.
#[derive(Debug, Clone, Copy)]
pub struct CostConstants {
    /// Physical page read from the disk manager.
    pub page_read: f64,
    /// Physical page write to the disk manager.
    pub page_write: f64,
    /// Buffer-pool hit (latch + lookup).
    pub buffer_hit: f64,
    /// One B-tree node visited during a descent.
    pub btree_node_visit: f64,
    /// Inserting one entry into a B-tree leaf (after the descent).
    pub btree_leaf_insert: f64,
    /// Encoding one operational data point into a batch buffer.
    pub point_encode: f64,
    /// Decoding one operational data point out of a ValueBlob.
    pub point_decode: f64,
    /// Encoding/decoding one row-store tuple (per cell).
    pub tuple_cell: f64,
    /// Assembling one relational cell in a virtual table (the VTI overhead).
    pub vti_cell_assemble: f64,
    /// One data-router metadata lookup (SQL against the catalog; the paper
    /// names this as the LQ1 blocker).
    pub router_lookup: f64,
    /// Evaluating one predicate against one row.
    pub predicate_eval: f64,
    /// Per-record commit overhead when autocommit is on (the 10× JDBC
    /// penalty §5.2 removes by batching 1000 rows per commit).
    pub autocommit: f64,
}

impl CostConstants {
    pub const fn default_const() -> CostConstants {
        CostConstants {
            page_read: 60.0,
            page_write: 120.0,
            buffer_hit: 0.4,
            btree_node_visit: 0.8,
            btree_leaf_insert: 2.5,
            point_encode: 0.35,
            point_decode: 0.25,
            tuple_cell: 0.12,
            vti_cell_assemble: 0.45,
            router_lookup: 12_000.0,
            predicate_eval: 0.05,
            autocommit: 400.0,
        }
    }
}

impl Default for CostConstants {
    fn default() -> Self {
        Self::default_const()
    }
}

/// Calibrated single-core capacity in cost units per second.
///
/// Calibration anchor (see crate docs): Table 2 setting 1 — 2000 PMUs at
/// 25 Hz (50k points/s) through the RTS ingest path charges ≈0.46 units
/// per point (encode + amortized flush/index/page work); the paper reports
/// 0.6% average load on 32 cores, which implies ≈1.2e5 units per
/// core-second. The same constant is used unchanged by every experiment;
/// sanity cross-check: it prices one `router_lookup` (12k units) at
/// ≈100 ms, matching §5.3's observation that LQ1 instances finish under
/// 100 ms everywhere yet the router dominates ODH's LQ1 cost.
pub const UNITS_PER_CORE_SECOND: f64 = 1.2e5;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_cost_more_than_reads() {
        let c = CostConstants::default();
        assert!(c.page_write > c.page_read);
        assert!(c.page_read > c.buffer_hit);
    }

    #[test]
    fn router_lookup_dominates_small_queries() {
        // The paper: LQ1 instances return <100 rows and finish <100 ms on
        // every system, yet ODH is 100× slower — because the router lookup
        // dwarfs per-row work. Our constants must preserve that ordering.
        let c = CostConstants::default();
        assert!(c.router_lookup > 100.0 * 17.0 * c.vti_cell_assemble);
    }
}
