//! Disk-time model: seek + transfer.
//!
//! The paper attributes two observed effects to disk mechanics: (a) RDB's
//! surprisingly good LD ingest ("the large size (86 bytes) of each record
//! dramatically reduced the magnetic arm movements"), and (b) the widening
//! ODH/RDB gap as records shrink (Fig. 7). Both fall out of the classic
//! `time = seeks × seek_time + bytes / transfer_rate` model: small records
//! make a row store seek-bound (time ∝ record count), while ODH's packed
//! batches amortize seeks over hundreds of points.

use parking_lot::Mutex;

/// A rotational-disk (RAID array) model.
#[derive(Debug)]
pub struct DiskModel {
    inner: Mutex<DiskInner>,
}

#[derive(Debug)]
struct DiskInner {
    /// Cost of one discontiguous I/O (head movement + rotational latency), µs.
    seek_us: f64,
    /// Sustained sequential bandwidth, bytes per second.
    transfer_bytes_per_sec: f64,
    ops: u64,
    seq_ops: u64,
    bytes: u64,
    busy_us: f64,
}

/// Summary of disk activity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskReport {
    pub ops: u64,
    /// Of which: sequential (seek-free) ops — log appends, mostly.
    pub seq_ops: u64,
    pub bytes: u64,
    /// Total virtual disk-busy seconds.
    pub busy_secs: f64,
    /// Effective bytes/second while busy.
    pub bytes_per_busy_sec: f64,
}

impl DiskModel {
    /// Model of the paper's benchmark array: "RAID5 10 TB storage with
    /// 2 Gbps data bandwidth" → 250 MB/s, with a typical ~5 ms random I/O.
    pub fn paper_raid5() -> DiskModel {
        DiskModel::new(5_000.0, 250.0e6)
    }

    pub fn new(seek_us: f64, transfer_bytes_per_sec: f64) -> DiskModel {
        assert!(transfer_bytes_per_sec > 0.0);
        DiskModel {
            inner: Mutex::new(DiskInner {
                seek_us,
                transfer_bytes_per_sec,
                ops: 0,
                seq_ops: 0,
                bytes: 0,
                busy_us: 0.0,
            }),
        }
    }

    /// Charge one random I/O of `bytes` and return its virtual latency in µs.
    pub fn random_io(&self, bytes: usize) -> f64 {
        let mut g = self.inner.lock();
        let t = g.seek_us + bytes as f64 / g.transfer_bytes_per_sec * 1e6;
        g.ops += 1;
        g.bytes += bytes as u64;
        g.busy_us += t;
        t
    }

    /// Charge one sequential I/O (no seek) of `bytes`; returns latency in µs.
    pub fn sequential_io(&self, bytes: usize) -> f64 {
        let mut g = self.inner.lock();
        let t = bytes as f64 / g.transfer_bytes_per_sec * 1e6;
        g.ops += 1;
        g.seq_ops += 1;
        g.bytes += bytes as u64;
        g.busy_us += t;
        t
    }

    pub fn report(&self) -> DiskReport {
        let g = self.inner.lock();
        let busy_secs = g.busy_us / 1e6;
        DiskReport {
            ops: g.ops,
            seq_ops: g.seq_ops,
            bytes: g.bytes,
            busy_secs,
            bytes_per_busy_sec: if busy_secs > 0.0 { g.bytes as f64 / busy_secs } else { 0.0 },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_records_are_seek_bound() {
        // 1000 random 86-byte writes vs 1000 random 8-byte writes: nearly
        // the same time (seek dominates), so points/s scales with record
        // width — the Fig. 7 mechanism.
        let d = DiskModel::new(5_000.0, 250.0e6);
        let wide: f64 = (0..1000).map(|_| d.random_io(86)).sum();
        let narrow: f64 = (0..1000).map(|_| d.random_io(8)).sum();
        assert!((wide / narrow) < 1.01);
    }

    #[test]
    fn sequential_io_amortizes_seeks() {
        let d = DiskModel::new(5_000.0, 250.0e6);
        let random = d.random_io(8192);
        let seq = d.sequential_io(8192);
        assert!(random / seq > 100.0, "random={random} seq={seq}");
    }

    #[test]
    fn report_accumulates() {
        let d = DiskModel::new(1_000.0, 1.0e6);
        d.random_io(500);
        d.sequential_io(500);
        let r = d.report();
        assert_eq!(r.ops, 2);
        assert_eq!(r.bytes, 1000);
        // 1000 µs seek + 2 × 500 µs transfer = 2 ms busy.
        assert!((r.busy_secs - 0.002).abs() < 1e-9);
        assert!((r.bytes_per_busy_sec - 500_000.0).abs() < 1.0);
    }
}
