//! Deterministic resource models for hardware the paper used and we do not
//! have (IBM P460/P750 servers, V7000/XIV storage arrays).
//!
//! The paper's case studies (Tables 2 and 3) report **CPU load under a fixed
//! arrival rate** — a property of work-per-data-point and core count, not of
//! the wall clock of whatever machine re-runs the experiment. To make those
//! rows reproducible we charge abstract *cost units* for the work the
//! engines actually perform (page I/O, index maintenance, record encoding,
//! row assembly) against a configurable capacity of `cores ×
//! units_per_core_second`, over a **virtual clock** driven by the workload's
//! own timestamps. The disk model likewise charges seek + transfer time per
//! I/O so that record-size effects (Fig. 7, the "magnetic arm movement"
//! observation for wide LD rows) are visible.
//!
//! Wall-clock throughput in Figures 5–7 is additionally *measured for real*
//! from the actual engines; the models here only produce the CPU-load and
//! I/O-rate columns.

pub mod cost;
pub mod cpu;
pub mod disk;
pub mod meter;

pub use cost::CostConstants;
pub use cpu::{CpuModel, CpuReport};
pub use disk::{DiskModel, DiskReport};
pub use meter::{ParallelReport, ResourceMeter, WalReport};
