//! The resource meter every engine component charges against.
//!
//! A [`ResourceMeter`] bundles the CPU model, the disk model, the calibrated
//! cost constants, and the workload-driven virtual clock. Engines hold an
//! `Arc<ResourceMeter>`; charging is cheap (one mutex op) and a no-op meter
//! (`ResourceMeter::unmetered`) is available for paths where modeling is not
//! wanted (pure wall-clock benchmarks).

use crate::cost::CostConstants;
use crate::cpu::{CpuModel, CpuReport};
use crate::disk::{DiskModel, DiskReport};
use odh_obs::{Counter, Gauge, Registry};
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;

/// Shared resource-accounting context.
///
/// The meter also owns the process's [`Registry`]: it is the one object
/// already threaded through every engine constructor (tables, WALs,
/// servers), so it is where the unified observability layer hangs its
/// metric handles. The meter's own counters live in that registry
/// (`odh_meter_*`).
#[derive(Debug)]
pub struct ResourceMeter {
    pub costs: CostConstants,
    cpu: CpuModel,
    disk: DiskModel,
    /// Virtual "now" in microseconds, advanced by the workload driver.
    now_us: AtomicI64,
    enabled: AtomicBool,
    /// The metrics registry shared by every component this meter reaches.
    registry: Arc<Registry>,
    /// Scoped parallel regions entered (batch ingests, scan fan-outs).
    parallel_regions: Arc<Counter>,
    /// Worker tasks spawned across all parallel regions.
    parallel_tasks: Arc<Counter>,
    /// Widest single region observed (degree of parallelism actually used).
    max_parallel_width: Arc<Gauge>,
    /// Bytes appended to the write-ahead log (group commits).
    wal_bytes: Arc<Counter>,
    /// WAL group commits issued.
    wal_writes: Arc<Counter>,
    /// WAL fsyncs (durability acknowledgements).
    wal_syncs: Arc<Counter>,
}

/// Point-in-time copy of the meter's WAL counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WalReport {
    pub bytes: u64,
    pub writes: u64,
    pub syncs: u64,
}

/// Point-in-time copy of the meter's parallelism counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ParallelReport {
    pub regions: u64,
    pub tasks: u64,
    pub max_width: u64,
}

impl ResourceMeter {
    /// A meter for a machine with `cores` calibrated cores and the paper's
    /// RAID5 array.
    pub fn new(cores: u32) -> Arc<ResourceMeter> {
        let registry = Registry::new();
        Arc::new(ResourceMeter {
            costs: CostConstants::default(),
            cpu: CpuModel::new(cores),
            disk: DiskModel::paper_raid5(),
            now_us: AtomicI64::new(0),
            enabled: AtomicBool::new(true),
            parallel_regions: registry.counter("odh_meter_parallel_regions_total", &[]),
            parallel_tasks: registry.counter("odh_meter_parallel_tasks_total", &[]),
            max_parallel_width: registry.gauge("odh_meter_max_parallel_width", &[]),
            wal_bytes: registry.counter("odh_meter_wal_bytes_total", &[]),
            wal_writes: registry.counter("odh_meter_wal_writes_total", &[]),
            wal_syncs: registry.counter("odh_meter_wal_syncs_total", &[]),
            registry,
        })
    }

    /// A disabled meter: all charges are dropped. Used by pure wall-clock
    /// benchmarks so modeling adds no overhead beyond one atomic load.
    pub fn unmetered() -> Arc<ResourceMeter> {
        let m = ResourceMeter::new(1);
        m.enabled.store(false, Ordering::Relaxed);
        m
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// The metrics registry every component charging this meter shares.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Advance the virtual clock (monotone; lagging calls are ignored).
    pub fn set_now(&self, at_us: i64) {
        self.now_us.fetch_max(at_us, Ordering::Relaxed);
        if self.is_enabled() {
            self.cpu.advance_to(at_us);
        }
    }

    pub fn now_us(&self) -> i64 {
        self.now_us.load(Ordering::Relaxed)
    }

    /// Charge CPU work at the current virtual time.
    #[inline]
    pub fn cpu(&self, units: f64) {
        if self.is_enabled() {
            self.cpu.charge(self.now_us(), units);
        }
    }

    /// Charge a random disk I/O; CPU time for issuing it is charged too.
    pub fn disk_random(&self, bytes: usize) {
        if self.is_enabled() {
            self.disk.random_io(bytes);
        }
    }

    /// Charge a sequential disk I/O.
    pub fn disk_sequential(&self, bytes: usize) {
        if self.is_enabled() {
            self.disk.sequential_io(bytes);
        }
    }

    /// Charge one WAL group commit: an append-only write, which the disk
    /// model prices as sequential I/O (the log is the one component laid
    /// out for pure appends). Counted even when metering is disabled so
    /// wall-clock benches can report WAL traffic.
    pub fn wal_write(&self, bytes: usize) {
        self.wal_bytes.add(bytes as u64);
        self.wal_writes.inc();
        self.disk_sequential(bytes);
    }

    /// Charge one WAL fsync (the commit barrier): one device round-trip
    /// with no payload, so one seek-priced random I/O of zero bytes.
    pub fn wal_sync(&self) {
        self.wal_syncs.inc();
        self.disk_random(0);
    }

    pub fn wal_report(&self) -> WalReport {
        WalReport {
            bytes: self.wal_bytes.get(),
            writes: self.wal_writes.get(),
            syncs: self.wal_syncs.get(),
        }
    }

    /// Record entry into a parallel region of `width` concurrent tasks.
    /// Tracked even when metering is disabled: parallelism observability
    /// is wanted exactly on the unmetered wall-clock benchmark paths.
    pub fn note_parallel(&self, width: usize) {
        self.parallel_regions.inc();
        self.parallel_tasks.add(width as u64);
        self.max_parallel_width.raise(width as i64);
    }

    pub fn parallel_report(&self) -> ParallelReport {
        ParallelReport {
            regions: self.parallel_regions.get(),
            tasks: self.parallel_tasks.get(),
            max_width: self.max_parallel_width.get() as u64,
        }
    }

    pub fn cpu_report(&self) -> CpuReport {
        self.cpu.report()
    }

    pub fn disk_report(&self) -> DiskReport {
        self.disk.report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmetered_drops_charges() {
        let m = ResourceMeter::unmetered();
        m.set_now(1_000_000);
        m.cpu(1e9);
        m.disk_random(1 << 20);
        assert_eq!(m.cpu_report().total_units, 0.0);
        assert_eq!(m.disk_report().ops, 0);
    }

    #[test]
    fn parallel_counters_accumulate() {
        let m = ResourceMeter::unmetered();
        m.note_parallel(4);
        m.note_parallel(2);
        let r = m.parallel_report();
        assert_eq!(r.regions, 2);
        assert_eq!(r.tasks, 6);
        assert_eq!(r.max_width, 4);
    }

    #[test]
    fn wal_charges_are_sequential() {
        let m = ResourceMeter::new(1);
        m.set_now(0);
        m.wal_write(8192);
        m.wal_write(8192);
        m.wal_sync();
        let w = m.wal_report();
        assert_eq!((w.bytes, w.writes, w.syncs), (16384, 2, 1));
        let d = m.disk_report();
        assert_eq!(d.ops, 3);
        assert_eq!(d.seq_ops, 2, "group commits must be priced sequentially");
        // Counters survive an unmetered meter; disk charges do not.
        let u = ResourceMeter::unmetered();
        u.wal_write(100);
        assert_eq!(u.wal_report().writes, 1);
        assert_eq!(u.disk_report().ops, 0);
    }

    #[test]
    fn clock_is_monotone() {
        let m = ResourceMeter::new(1);
        m.set_now(100);
        m.set_now(50);
        assert_eq!(m.now_us(), 100);
    }

    #[test]
    fn charges_land_at_virtual_time() {
        let m = ResourceMeter::new(1);
        m.set_now(0);
        m.cpu(100_000.0);
        m.set_now(5_000_000);
        m.cpu(100_000.0);
        let r = m.cpu_report();
        assert_eq!(r.total_units, 200_000.0);
        // Two active windows out of six → avg is one third of the window load.
        assert!(r.max_load > r.avg_load);
    }
}
