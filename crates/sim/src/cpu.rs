//! CPU-load model over a virtual clock.
//!
//! Work is charged in cost units at virtual timestamps; loads are accounted
//! per one-second window, exactly how the paper's "Avg CPU Load / Max CPU
//! Load" columns are produced by a sampling monitor. The model is
//! deterministic: the same workload always yields the same report.

use crate::cost::UNITS_PER_CORE_SECOND;
use parking_lot::Mutex;

/// Per-window CPU accounting against a capacity of
/// `cores × units_per_core_second`.
#[derive(Debug)]
pub struct CpuModel {
    inner: Mutex<Inner>,
}

#[derive(Debug)]
struct Inner {
    cores: u32,
    units_per_core_sec: f64,
    /// Window length in virtual microseconds.
    window_us: i64,
    /// Start of accounting (first charge) in virtual micros.
    start_us: Option<i64>,
    cur_window: i64,
    cur_units: f64,
    /// Completed windows' charged units.
    windows: Vec<f64>,
    total_units: f64,
    /// Most recent virtual time seen.
    now_us: i64,
}

/// Summary of a CPU-model run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuReport {
    /// Mean load over all windows from first to last charge, 0.0–(may
    /// exceed 1.0 when the offered work saturates the machine).
    pub avg_load: f64,
    /// Peak single-window load.
    pub max_load: f64,
    /// Total cost units charged.
    pub total_units: f64,
    /// Virtual seconds covered.
    pub elapsed_secs: f64,
}

impl CpuReport {
    /// True when some window demanded more work than the machine supplies —
    /// the workload cannot run in real time on this configuration.
    pub fn saturated(&self) -> bool {
        self.max_load > 1.0
    }
}

impl CpuModel {
    /// A model of `cores` cores at the calibrated default speed.
    pub fn new(cores: u32) -> CpuModel {
        Self::with_speed(cores, UNITS_PER_CORE_SECOND)
    }

    /// A model with an explicit per-core capacity (units/second).
    pub fn with_speed(cores: u32, units_per_core_sec: f64) -> CpuModel {
        assert!(cores > 0, "CPU model needs at least one core");
        CpuModel {
            inner: Mutex::new(Inner {
                cores,
                units_per_core_sec,
                window_us: 1_000_000,
                start_us: None,
                cur_window: 0,
                cur_units: 0.0,
                windows: Vec::new(),
                total_units: 0.0,
                now_us: 0,
            }),
        }
    }

    pub fn cores(&self) -> u32 {
        self.inner.lock().cores
    }

    /// Charge `units` of work at virtual time `at_us` (microseconds).
    /// Charges may arrive slightly out of order (concurrent writers); each
    /// lands in the window of its own timestamp when it is the current one,
    /// otherwise in the newest window.
    pub fn charge(&self, at_us: i64, units: f64) {
        debug_assert!(units >= 0.0);
        let mut g = self.inner.lock();
        let w = at_us.div_euclid(g.window_us);
        if g.start_us.is_none() {
            g.start_us = Some(at_us);
            g.cur_window = w;
        }
        if w > g.cur_window {
            // Close out windows up to w.
            let gap = (w - g.cur_window - 1).min(1 << 20) as usize;
            let closed = g.cur_units;
            g.windows.push(closed);
            // Idle windows in between contribute zero load.
            g.windows.extend(std::iter::repeat_n(0.0, gap));
            g.cur_window = w;
            g.cur_units = 0.0;
        }
        g.cur_units += units;
        g.total_units += units;
        g.now_us = g.now_us.max(at_us);
    }

    /// Advance the clock without charging (marks idle time).
    pub fn advance_to(&self, at_us: i64) {
        self.charge(at_us, 0.0);
    }

    /// Produce the report. Non-destructive; accounting may continue.
    pub fn report(&self) -> CpuReport {
        let g = self.inner.lock();
        let capacity_per_window =
            g.cores as f64 * g.units_per_core_sec * (g.window_us as f64 / 1e6);
        let mut loads: Vec<f64> = g.windows.iter().map(|u| u / capacity_per_window).collect();
        if g.cur_units > 0.0 || loads.is_empty() {
            loads.push(g.cur_units / capacity_per_window);
        }
        let n = loads.len().max(1) as f64;
        let avg = loads.iter().sum::<f64>() / n;
        let max = loads.iter().cloned().fold(0.0f64, f64::max);
        CpuReport {
            avg_load: avg,
            max_load: max,
            total_units: g.total_units,
            elapsed_secs: n * (g.window_us as f64 / 1e6),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_rate_yields_constant_load() {
        // 1 core at 1e6 units/s; charge 10k units each second for 10 s → 1%.
        let m = CpuModel::with_speed(1, 1e6);
        for s in 0..10 {
            m.charge(s * 1_000_000 + 500_000, 10_000.0);
        }
        let r = m.report();
        assert!((r.avg_load - 0.01).abs() < 1e-9, "avg={}", r.avg_load);
        assert!((r.max_load - 0.01).abs() < 1e-9);
        assert!(!r.saturated());
    }

    #[test]
    fn load_scales_inversely_with_cores() {
        let charge = |cores| {
            let m = CpuModel::with_speed(cores, 1e6);
            for s in 0..4 {
                m.charge(s * 1_000_000, 100_000.0);
            }
            m.report().avg_load
        };
        let one = charge(1);
        let eight = charge(8);
        assert!((one / eight - 8.0).abs() < 1e-6);
    }

    #[test]
    fn bursts_show_in_max_not_avg() {
        let m = CpuModel::with_speed(1, 1e6);
        m.charge(0, 10_000.0);
        m.charge(1_000_000, 500_000.0); // burst window
        m.charge(2_000_000, 10_000.0);
        m.charge(3_000_000, 10_000.0);
        let r = m.report();
        assert!((r.max_load - 0.5).abs() < 1e-9);
        assert!(r.avg_load < 0.2);
    }

    #[test]
    fn idle_gaps_count_as_zero_load() {
        let m = CpuModel::with_speed(1, 1e6);
        m.charge(0, 100_000.0);
        m.charge(9 * 1_000_000, 100_000.0); // 8 idle windows between
        let r = m.report();
        assert!((r.avg_load - 0.02).abs() < 1e-9, "avg={}", r.avg_load);
    }

    #[test]
    fn saturation_detected() {
        let m = CpuModel::with_speed(1, 1e6);
        m.charge(0, 2_000_000.0);
        assert!(m.report().saturated());
    }

    #[test]
    fn table2_calibration_anchor() {
        // 2000 PMUs @ 25 Hz = 50k points/s; ≈0.46 units/point of ingest
        // work on 32 cores must land near the paper's 0.6% (±0.4 pp).
        let m = CpuModel::new(32);
        for s in 0..30i64 {
            m.charge(s * 1_000_000, 50_000.0 * 0.46);
        }
        let r = m.report();
        assert!(r.avg_load > 0.002 && r.avg_load < 0.010, "load={}", r.avg_load);
    }
}
